// Package fenceplace is the public API of this module: automatic fence
// placement for legacy data-race-free programs via synchronization-read
// detection, after McPherson, Nagarajan, Sarkar and Cintra (PPoPP'15).
//
// The pipeline takes a program in the module's compiler IR (built with the
// ir builder or parsed from the textual form), runs alias and thread-escape
// analysis, detects acquire reads with one of the paper's two signatures
// algorithms, generates Pensieve-style orderings, prunes them with the DRF
// rules, and places a minimal set of x86-TSO fences:
//
//	prog := fenceplace.MustParse(src)         // or build with ir.NewProgram
//	res := fenceplace.Analyze(prog, fenceplace.Control)
//	fmt.Println(res.Summary())
//	out := fenceplace.RunTSO(res.Instrumented, 0)
//
// Strategies: PensieveOnly reproduces the baseline (no acquire knowledge),
// Control is the paper's fast variant (Listing 1), AddressControl the
// conservative one (Listing 3).
package fenceplace

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"fenceplace/internal/fence"
	"fenceplace/internal/ir"
	"fenceplace/internal/mc"
	"fenceplace/internal/orders"
	"fenceplace/internal/passes"
	"fenceplace/internal/tso"
)

// Program is the analyzed unit: globals plus functions in the module's IR.
type Program = ir.Program

// Instr is a single IR instruction; analyses report results per Instr.
type Instr = ir.Instr

// Parse reads a program in the textual IR syntax (see internal/ir.Parse).
func Parse(src string) (*Program, error) { return ir.Parse(src) }

// MustParse is Parse that panics on error, for embedded sources.
func MustParse(src string) *Program { return ir.MustParse(src) }

// Format renders a program back to its textual syntax.
func Format(p *Program) string { return ir.Format(p) }

// Strategy selects the fence-placement variant.
type Strategy int

const (
	// PensieveOnly places fences for every generated ordering (the
	// baseline the paper compares against).
	PensieveOnly Strategy = iota
	// Control prunes orderings using control acquires only (Listing 1).
	Control
	// AddressControl prunes using control and address acquires
	// (Listing 3) — the conservative variant.
	AddressControl
)

func (s Strategy) String() string {
	switch s {
	case PensieveOnly:
		return "Pensieve"
	case Control:
		return "Control"
	case AddressControl:
		return "Address+Control"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Result carries everything the pipeline produced for one program.
type Result struct {
	Strategy Strategy
	Prog     *Program // the analyzed (uninstrumented) program

	EscapingReads int      // candidate acquires (Figure 7 denominator)
	Acquires      []*Instr // detected synchronization reads (program order)

	OrderingsGenerated int // Pensieve ordering count before pruning
	OrderingsKept      int // after DRF pruning (equal for PensieveOnly)

	FullFences       int // full fences placed, including entry fences
	CompilerBarriers int

	// Instrumented is a clone of Prog with the fences inserted; the
	// original is never mutated. Results produced by the same Analyzer
	// under the same strategy share one memoized clone — treat it as
	// read-only (execute it, format it; to edit it, Clone it first). The
	// one-shot Analyze builds a fresh Analyzer, so its clone is private.
	Instrumented *Program

	// Timings holds the per-pass wall times of the producing session,
	// populated only when the Analyzer was built WithTiming; Summary then
	// appends them to its report.
	Timings []PassTiming

	plan *fence.Plan
	kept *orders.Set

	// Verification cache: the correspondence map for Instrumented and the
	// plan that produced it. Verify reuses the memoized clone only while
	// plan still is applied (a replaced plan falls back to a fresh Apply).
	imap    map[*Instr]*Instr
	applied *fence.Plan

	// sess is the producing pass session; certification reuses its
	// memoized SC baseline so N variants of one program cost one SC
	// exploration. Nil only for hand-built Results.
	sess *passes.Session

	// cfg carries the producing analyzer's resolved options (cfgOK true),
	// so option-less CertifyCtx calls inherit them — one option list
	// configures the whole pipeline. Hand-built Results have neither.
	cfg   config
	cfgOK bool
}

// PassTiming is one pipeline pass and its own wall time (excluding the
// passes it depends on).
type PassTiming struct {
	Pass     string
	Duration time.Duration
}

// Analyzer is a reusable analysis handle over one program: a shared pass
// session in which the strategy-independent passes (alias, escape,
// ordering generation, the slicing indexes) run once and every strategy's
// pruning and minimization is memoized. Methods are safe for concurrent
// use; AnalyzeAll evaluates strategies in parallel.
type Analyzer struct {
	sess *passes.Session
	cfg  config
}

// NewAnalyzer finalizes the program and prepares a shared analysis
// session. Passes run lazily on first demand and are computed once across
// all strategies. The analyzer's resolved options also serve as the
// defaults for its certification-side methods (Baseline), so one option
// list can configure the whole pipeline.
func NewAnalyzer(p *Program, opts ...Option) *Analyzer {
	a := &Analyzer{cfg: resolve(opts)}
	a.sess = passes.NewSession(p, passes.Workers(a.cfg.workers))
	return a
}

// strategyOf maps the public Strategy onto the pass manager's.
func strategyOf(s Strategy) passes.Strategy {
	switch s {
	case Control:
		return passes.Control
	case AddressControl:
		return passes.AddressControl
	}
	return passes.PensieveOnly
}

// Analyze evaluates one strategy on the shared session: only the pruning,
// minimization and instrumentation specific to the strategy run anew;
// everything else is served from the session cache.
func (a *Analyzer) Analyze(s Strategy) *Result {
	res, _ := a.AnalyzeCtx(context.Background(), s) // cannot fail: the ctx never fires
	return res
}

// AnalyzeCtx is Analyze bounded by a context: the context is observed
// between pipeline passes, so a cancelled analysis stops triggering
// further pass work and returns ctx's error. Passes that completed before
// the cancellation stay memoized in the session — they are valid artifacts
// and a retry resumes past them.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, s Strategy) (res *Result, err error) {
	// A panic below — the session's pass fan-out re-raises pool-goroutine
	// panics on this goroutine — costs exactly this call, not the process.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, mc.AsInternalError("fenceplace: analyze", r)
		}
	}()
	sess := a.sess
	st := strategyOf(s)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kept := sess.Kept(st)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan := sess.Plan(st)

	res = &Result{
		Strategy:           s,
		Prog:               sess.Program(),
		EscapingReads:      sess.Escape().CountReads(),
		OrderingsGenerated: sess.Generated().Total(),
		OrderingsKept:      kept.Total(),
		kept:               kept,
		plan:               plan,
	}
	if acq := sess.Acquires(st); acq != nil {
		for _, f := range sess.Program().Funcs {
			res.Acquires = append(res.Acquires, acq.SyncReads(f)...)
		}
	}
	res.FullFences = plan.FullFences()
	res.CompilerBarriers = plan.CompilerBarriers()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Instrumented, res.imap = sess.Applied(st)
	res.applied = plan
	res.sess = sess
	res.cfg, res.cfgOK = a.cfg, true
	if a.cfg.timing {
		res.Timings = a.passTimings(s, st)
	}
	return res, nil
}

// passTimings extracts, in pipeline order, the timings of exactly the
// passes the strategy depends on. Every listed pass has completed by the
// time Analyze reads the session (they are dependencies of the plan), so
// the result is deterministic even when sibling strategies are still
// recording theirs.
func (a *Analyzer) passTimings(s Strategy, st passes.Strategy) []PassTiming {
	byName := make(map[string]time.Duration)
	for _, t := range a.sess.Timings() {
		byName[t.Pass] = t.Duration
	}
	names := []string{"alias", "escape", "cfg", "orders"}
	if s != PensieveOnly {
		names = append(names, "slice-index", "acquire/"+st.String(), "prune/"+st.String())
	}
	names = append(names, "minimize/"+st.String(), "apply/"+st.String())
	var out []PassTiming
	for _, n := range names {
		if d, ok := byName[n]; ok {
			out = append(out, PassTiming{Pass: n, Duration: d})
		}
	}
	return out
}

// AnalyzeAll evaluates the given strategies (default: all three) in
// parallel on the shared session, returning results in argument order.
// The shared passes run once; compared to independent Analyze calls the
// three-strategy evaluation does roughly a third of the pass work. An
// analyzer bounded to one worker (WithWorkers(1)) evaluates the
// strategies inline instead, so it really is single-threaded.
func (a *Analyzer) AnalyzeAll(strategies ...Strategy) []*Result {
	out, _ := a.AnalyzeAllCtx(context.Background(), strategies...) // cannot fail: the ctx never fires
	return out
}

// AnalyzeAllCtx is AnalyzeAll bounded by a context: a cancellation stops
// triggering further pass work in every strategy's evaluation and the call
// returns ctx's error with no results.
func (a *Analyzer) AnalyzeAllCtx(ctx context.Context, strategies ...Strategy) ([]*Result, error) {
	if len(strategies) == 0 {
		strategies = []Strategy{PensieveOnly, Control, AddressControl}
	}
	out := make([]*Result, len(strategies))
	errs := make([]error, len(strategies))
	if a.cfg.workers == 1 {
		for i, s := range strategies {
			if out[i], errs[i] = a.AnalyzeCtx(ctx, s); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	wg.Add(len(strategies))
	for i, s := range strategies {
		go func(i int, s Strategy) {
			defer wg.Done()
			out[i], errs[i] = a.AnalyzeCtx(ctx, s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Analyze runs the complete static pipeline under the given strategy. It
// is the one-shot convenience over NewAnalyzer; callers evaluating several
// strategies on one program should hold an Analyzer so the shared passes
// run once.
func Analyze(p *Program, s Strategy) *Result {
	return NewAnalyzer(p).Analyze(s)
}

// AnalyzeCtx is the one-shot Analyze with a context and options: it builds
// a fresh Analyzer, so callers evaluating several strategies on one
// program should hold an Analyzer instead.
func AnalyzeCtx(ctx context.Context, p *Program, s Strategy, opts ...Option) (*Result, error) {
	return NewAnalyzer(p, opts...).AnalyzeCtx(ctx, s)
}

// CoverageError is the structured verification failure Verify returns: the
// uncovered ordering plus its location in the instrumented program and the
// fences present in the offending function (see internal/fence).
type CoverageError = fence.CoverageError

// Verify re-checks that the placed fences cover every kept ordering along
// all control-flow paths. Analyze always produces covering plans; Verify
// exists for audit trails and tests. On failure the error is a
// *CoverageError carrying the uncovered ordering, its instrumented-program
// endpoints and the function's fences (use errors.As to recover it).
func (r *Result) Verify() error {
	inst, imap := r.Instrumented, r.imap
	if imap == nil || r.applied != r.plan {
		inst, imap = r.plan.Apply()
	}
	return fence.Verify(r.kept, fence.Options{}, inst, imap)
}

// Kept returns the enforced (post-pruning) ordering set. The returned
// value is an internal analysis type shared with the session; treat it as
// read-only. It exists for tooling built on the module (the experiment
// harness, custom reports).
func (r *Result) Kept() *orders.Set { return r.kept }

// Plan returns the minimized fence plan behind Instrumented; treat it as
// read-only (see Kept).
func (r *Result) Plan() *fence.Plan { return r.plan }

// Summary renders a one-paragraph report of the analysis, followed by
// per-pass timings when the producing Analyzer was built WithTiming.
func (r *Result) Summary() string {
	pruned := r.OrderingsGenerated - r.OrderingsKept
	s := fmt.Sprintf(
		"%s: %d escaping reads, %d acquires detected; %d orderings generated, %d pruned, %d enforced; %d full fences + %d compiler barriers placed",
		r.Strategy, r.EscapingReads, len(r.Acquires),
		r.OrderingsGenerated, pruned, r.OrderingsKept,
		r.FullFences, r.CompilerBarriers)
	if len(r.Timings) > 0 {
		var sb strings.Builder
		sb.WriteString(s)
		sb.WriteString("\n  passes:")
		for _, t := range r.Timings {
			fmt.Fprintf(&sb, " %s=%s", t.Pass, t.Duration.Round(time.Microsecond))
		}
		return sb.String()
	}
	return s
}

// RunOutcome is the result of executing a program on the built-in machine.
type RunOutcome = tso.Outcome

// RunTSO executes the program on the x86-TSO simulator (random scheduling
// seeded by seed, eventual store drain). Assertion failures, deadlock and
// runtime errors are reported in the outcome.
func RunTSO(p *Program, seed int64) *RunOutcome {
	return tso.Run(p, tso.Config{
		Mode: tso.TSO, Sched: tso.Random, Policy: tso.DrainRandom, Seed: seed,
	})
}

// RunSC executes the program under sequential consistency — the reference
// semantics the paper's guarantee is stated against.
func RunSC(p *Program, seed int64) *RunOutcome {
	return tso.Run(p, tso.Config{Mode: tso.SC, Sched: tso.Random, Seed: seed})
}

// CertReport is the verdict of a certification run: whether the
// instrumented program under x86-TSO reaches exactly the final states the
// original reaches under SC, with counterexample schedules when it does
// not (see internal/mc).
type CertReport = mc.Report

// CertOptions tunes a certification run. The zero value uses the model
// checker's defaults (GOMAXPROCS workers, 2M-state budget, partial-order
// reduction on, fingerprint seen-sets) and no baseline persistence beyond
// $FENCEPLACE_CACHE_DIR.
//
// Deprecated: CertOptions predates the unified Option set; use the
// functional options (WithMaxStates, WithWorkers, WithCacheDir, …) with
// CertifyCtx/BaselineCtx instead. It remains as an adapter — Options
// converts — and every entry point taking it is a thin wrapper over the
// Option-based path.
type CertOptions struct {
	MaxStates int64 // state budget per exploration; exceeded => error
	Workers   int   // parallel exploration workers
	BufferCap int   // TSO store-buffer capacity modeled (default 4)
	MemoryCap int   // memory budget in arena words (default 1<<22; <0 uncapped)
	ExactSeen bool  // exact string-keyed seen sets (slow oracle mode)
	NoPOR     bool  // disable partial-order reduction (cross-check oracle)

	// SpillDir names the scratch area sealed seen-set runs spill to when
	// an exploration outgrows the MemoryCap-derived seen-set budget (see
	// WithSpillDir). Empty keeps sealed runs in RAM.
	SpillDir string

	// CacheDir names a persistent, content-addressed baseline store
	// (internal/store): SC explorations are looked up there by canonical
	// program+config hash before running and written back after, so
	// repeated certification runs — across processes and machines —
	// warm-start past the SC side entirely. Empty means the
	// FENCEPLACE_CACHE_DIR environment variable, then no persistence.
	// Corrupt or truncated store entries degrade to cache misses (and are
	// quarantined); they can never yield a wrong certification.
	CacheDir string
}

// EffectiveCacheDir resolves the baseline store directory the options
// select: the explicit CacheDir, else $FENCEPLACE_CACHE_DIR, else "" (no
// persistence). Note that it re-reads the environment on every call;
// Options resolves the directory exactly once, which is why multi-program
// drivers must convert once up front rather than calling this per
// certification.
//
// Deprecated: resolve once via Options and WithCacheDir.
func (o CertOptions) EffectiveCacheDir() string {
	if o.CacheDir != "" {
		return o.CacheDir
	}
	return os.Getenv("FENCEPLACE_CACHE_DIR")
}

// Options converts the deprecated struct into the unified functional-
// option form. The cache directory is resolved (environment included)
// exactly once, here, so the resulting options pin one store directory no
// matter how often or late they are applied.
func (o CertOptions) Options() []Option {
	opts := []Option{
		WithMaxStates(o.MaxStates),
		WithWorkers(o.Workers),
		WithBufferCap(o.BufferCap),
		WithMemoryCap(o.MemoryCap),
		WithCacheDir(o.EffectiveCacheDir()),
	}
	if o.SpillDir != "" {
		// An unset SpillDir keeps the $FENCEPLACE_SPILL_DIR fallback alive
		// (resolved once, like the cache directory).
		opts = append(opts, WithSpillDir(o.SpillDir))
	}
	if o.ExactSeen {
		opts = append(opts, WithExactSeen())
	}
	if o.NoPOR {
		opts = append(opts, WithNoPOR())
	}
	return opts
}

// MCConfig maps the certification options onto a model-checker
// configuration. Every exploration-shaping Config field has a CertOptions
// counterpart, so the session-baseline path and the standalone path
// explore identically; it is exported as the single source of this mapping
// for tooling built on the module (the experiment harness). CacheDir is
// deliberately absent: it routes through the baseline loader, not the
// exploration.
func (o CertOptions) MCConfig() mc.Config {
	return mc.Config{
		MaxStates: o.MaxStates,
		Workers:   o.Workers,
		BufferCap: o.BufferCap,
		MemoryCap: o.MemoryCap,
		SpillDir:  o.SpillDir,
		ExactSeen: o.ExactSeen,
		NoPOR:     o.NoPOR,
	}
}

// CertBaseline is a reusable SC exploration of one program — the half of
// a certification every fence-placement variant shares (see
// Analyzer.Baseline and internal/mc).
type CertBaseline = mc.Baseline

// ErrTruncated reports a certification whose state budget ran out; the
// verdict is then unknown, never "equivalent".
var ErrTruncated = mc.ErrTruncated

// InternalError is a panic recovered from the pipeline's worker pools (an
// exploration worker, the per-function pass fan-out) or the facade itself,
// returned as the failing call's error instead of crashing the process.
// Sibling jobs and other analyzers are unaffected. Match with errors.As:
//
//	var ie *fenceplace.InternalError
//	if errors.As(err, &ie) { log.Printf("panic: %v\n%s", ie.Panic, ie.Stack) }
type InternalError = mc.InternalError

// Certify model-checks an analysis result: it explores every interleaving
// (and store-buffer drain schedule) of the instrumented program under
// x86-TSO and of the original program under SC, and reports whether the
// reachable final-state sets coincide — the paper's guarantee, decided
// exhaustively. The program is explored from its main function; use
// CertifyThreads for litmus-style programs without one.
func Certify(res *Result) (*CertReport, error) {
	return CertifyThreads(res, nil)
}

// CertifyThreads is Certify with an explicit set of flat thread functions
// run concurrently from the initial state (the litmus configuration).
func CertifyThreads(res *Result, threads []string) (*CertReport, error) {
	return CertifyOpt(res, threads, CertOptions{})
}

// CertifyOpt is CertifyThreads with explicit exploration options.
//
// Deprecated: use CertifyCtx with the unified Option set; this wrapper
// converts opt via CertOptions.Options and runs with a background context.
func CertifyOpt(res *Result, threads []string, opt CertOptions) (*CertReport, error) {
	return CertifyCtx(context.Background(), res, threads, opt.Options()...)
}

// CertifyCtx model-checks an analysis result under an explicit context and
// option set. With no options given, a Result produced by an Analyzer
// inherits the analyzer's construction-time options — one option list
// configures analysis and certification alike; passing any option
// replaces the configuration wholesale. Results produced by an Analyzer
// certify against the SC baseline memoized in the producing session, so
// certifying all strategies of one program performs at most one SC
// exploration; hand-built Results build (or load) a baseline per call.
// With a cache directory in play (WithCacheDir or $FENCEPLACE_CACHE_DIR)
// both paths consult the persistent baseline store first and write fresh
// explorations back, so a warm store eliminates the SC side across
// processes.
//
// Cancelling ctx abandons whichever exploration is in flight promptly and
// returns ctx's error: exploration workers drain their frontiers instead
// of finishing, no baseline is written back to the store, and the
// session's in-memory memo drops the cancelled attempt so a later call
// with a live context retries.
func CertifyCtx(ctx context.Context, res *Result, threads []string, opts ...Option) (rep *CertReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, mc.AsInternalError("fenceplace: certify", r)
		}
	}()
	var c config
	if len(opts) == 0 && res.cfgOK {
		c = res.cfg
	} else {
		c = resolve(opts)
	}
	cfg := c.mcConfig()
	ctx = c.exploreCtx(ctx) // WithProgress streams every exploration below
	if res.sess != nil {
		base, err := res.sess.CertBaselineAtCtx(ctx, threads, cfg, c.cacheDir)
		if err != nil {
			return nil, err
		}
		return mc.CertifyAgainstCtx(ctx, base, res.Instrumented, cfg)
	}
	base, _, err := passes.LoadOrExploreBaselineCtx(ctx, res.Prog, threads, cfg, c.cacheDir)
	if err != nil {
		return nil, err
	}
	return mc.CertifyAgainstCtx(ctx, base, res.Instrumented, cfg)
}

// Baseline returns the analyzer's memoized SC exploration for the given
// entry configuration (nil threads explores from main), computing it on
// first use — or loading it from the persistent baseline store when
// opt.CacheDir (or $FENCEPLACE_CACHE_DIR) names one.
//
// Deprecated: use BaselineCtx with the unified Option set.
func (a *Analyzer) Baseline(threads []string, opt CertOptions) (*CertBaseline, error) {
	return a.BaselineCtx(context.Background(), threads, opt.Options()...)
}

// BaselineCtx returns the analyzer's memoized SC exploration for the given
// entry configuration (nil threads explores from main), computing it on
// first use — or loading it from the persistent baseline store when the
// options (or $FENCEPLACE_CACHE_DIR) name one. With no options given, the
// analyzer's own construction-time options apply, so one option list can
// configure analysis and certification alike. Callers fanning
// certification out over variants — or over expert builds of the same
// program that no Result carries — pair it with mc.CertifyAgainst via
// CertifyCtx's session reuse or internal tooling.
func (a *Analyzer) BaselineCtx(ctx context.Context, threads []string, opts ...Option) (base *CertBaseline, err error) {
	defer func() {
		if r := recover(); r != nil {
			base, err = nil, mc.AsInternalError("fenceplace: baseline", r)
		}
	}()
	c := a.cfg
	if len(opts) > 0 {
		c = resolve(opts)
	}
	return a.sess.CertBaselineAtCtx(c.exploreCtx(ctx), threads, c.mcConfig(), c.cacheDir)
}

// CertifyProgramCtx certifies an arbitrary instrumented build of the
// analyzer's program — typically an expert manual placement that no
// Result carries — against the session's shared SC baseline: one TSO
// exploration, with the SC side served from the memo (or the persistent
// store) like every other certification of this analyzer. With no options
// given, the analyzer's construction-time options apply.
func (a *Analyzer) CertifyProgramCtx(ctx context.Context, inst *Program, threads []string, opts ...Option) (rep *CertReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, mc.AsInternalError("fenceplace: certify program", r)
		}
	}()
	c := a.cfg
	if len(opts) > 0 {
		c = resolve(opts)
	}
	cfg := c.mcConfig()
	ctx = c.exploreCtx(ctx)
	base, err := a.sess.CertBaselineAtCtx(ctx, threads, cfg, c.cacheDir)
	if err != nil {
		return nil, err
	}
	return mc.CertifyAgainstCtx(ctx, base, inst, cfg)
}
