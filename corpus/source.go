// Package corpus is the public corpus-driver API: it streams named
// programs through the fence-placement pipeline (analysis, the dynamic
// experiment, certification) and emits plain-data Report rows that
// serialize to versioned JSON, merge across shards, and render into the
// paper's tables.
//
// The package exists so the paper's evaluation scales past one process:
// Shard(i, n) deterministically partitions any Source, rows produced from
// a shard keep their unsharded corpus index, and Report.Merge recombines
// shard outputs into a report whose rendered tables are byte-identical to
// an unsharded run — run `paperbench -shard 2/4` on four machines, merge
// the four JSON files, and read the same Figures 7–10. Table rendering is
// a view over the Report data, never the source of truth.
package corpus

import (
	"fmt"

	"fenceplace"
	"fenceplace/internal/progs"
)

// Source is an iterator of named programs: the unit the Runner drives.
// Programs are built lazily, so a shard only pays for its own members.
// Implementations must be safe for concurrent use — the Runner builds
// members from several goroutines.
type Source interface {
	// Label names the source ("eval", "cert-kernels", a program name);
	// reports carry it as provenance and Merge refuses to mix labels.
	Label() string
	// Len is the number of member programs.
	Len() int
	// Name returns member i's program name.
	Name(i int) string
	// Build instantiates member i's legacy (unfenced) build.
	Build(i int) *fenceplace.Program
	// BuildManual instantiates member i's expert build (the paper's §5.3
	// manual baseline), or nil when the member has none.
	BuildManual(i int) *fenceplace.Program
}

// indexed is the optional interface a partitioned Source implements so
// the Runner can stamp rows with their unsharded corpus index; Shard's
// views provide it, plain Sources get identity indices.
type indexed interface {
	origIndex(i int) int
}

// progsSource serves a slice of corpus programs at per-member parameters.
type progsSource struct {
	label  string
	metas  []*progs.Meta
	params func(m *progs.Meta) progs.Params
}

func (s *progsSource) Label() string     { return s.label }
func (s *progsSource) Len() int          { return len(s.metas) }
func (s *progsSource) Name(i int) string { return s.metas[i].Name }

func (s *progsSource) Build(i int) *fenceplace.Program {
	return s.metas[i].Build(s.params(s.metas[i]))
}

func (s *progsSource) BuildManual(i int) *fenceplace.Program {
	p := s.params(s.metas[i])
	p.Manual = true
	return s.metas[i].Build(p)
}

// EvalSource is the paper's Figures 7–10 evaluation set (the SPLASH-2-like
// programs followed by the lock-free ones, in display order) at each
// program's default parameters.
func EvalSource() Source {
	return &progsSource{
		label:  "eval",
		metas:  progs.EvalSet(),
		params: func(m *progs.Meta) progs.Params { return m.Defaults },
	}
}

// CertSource is the certification set: the Table II synchronization
// kernels at a reduced instantiation (2 threads, size capped at 2) so
// exhaustive exploration closes the state space.
func CertSource() Source {
	return &progsSource{
		label: "cert-kernels",
		metas: progs.ByKind(progs.SyncKernel),
		params: func(m *progs.Meta) progs.Params {
			p := m.Defaults
			p.Threads = 2
			if p.Size > 2 {
				p.Size = 2
			}
			return p
		},
	}
}

// SingleSource wraps one already-built program (and optionally its expert
// build) as a Source, so single-program tools emit the same Report rows
// the corpus drivers do.
func SingleSource(name string, prog, manual *fenceplace.Program) Source {
	return &singleSource{name: name, prog: prog, manual: manual}
}

type singleSource struct {
	name         string
	prog, manual *fenceplace.Program
}

// GoSource lowers one file of restricted real-Go source into a
// single-member Source named after its package clause, so Go programs run
// through the same drivers as hand-built IR. There is no expert build for
// lowered source — BuildManual yields nil and drivers skip that column.
// Subset violations surface as the frontend's position-sorted diagnostic
// list.
func GoSource(filename string, src []byte) (Source, error) {
	prog, err := fenceplace.ParseGo(filename, src)
	if err != nil {
		return nil, err
	}
	name := prog.Name
	if name == "" {
		name = filename
	}
	return SingleSource(name, prog, nil), nil
}

func (s *singleSource) Label() string                       { return s.name }
func (s *singleSource) Len() int                            { return 1 }
func (s *singleSource) Name(int) string                     { return s.name }
func (s *singleSource) Build(int) *fenceplace.Program       { return s.prog }
func (s *singleSource) BuildManual(int) *fenceplace.Program { return s.manual }

// Shard returns the i-of-n partition of src (i is 1-based): the members
// whose corpus index is congruent to i-1 modulo n. The partition is
// deterministic and exhaustive — the n shards of one source are disjoint
// and cover it — and rows produced from a shard keep their unsharded
// Index, so the shard reports Merge back into exactly the unsharded
// report.
func Shard(src Source, i, n int) (Source, error) {
	if n < 1 || i < 1 || i > n {
		return nil, fmt.Errorf("corpus: invalid shard %d/%d", i, n)
	}
	sh := &shardSource{src: src, i: i, n: n}
	for j := 0; j < src.Len(); j++ {
		if j%n == i-1 {
			sh.idx = append(sh.idx, j)
		}
	}
	return sh, nil
}

type shardSource struct {
	src  Source
	idx  []int
	i, n int
}

func (s *shardSource) Label() string                         { return s.src.Label() }
func (s *shardSource) Len() int                              { return len(s.idx) }
func (s *shardSource) Name(i int) string                     { return s.src.Name(s.idx[i]) }
func (s *shardSource) Build(i int) *fenceplace.Program       { return s.src.Build(s.idx[i]) }
func (s *shardSource) BuildManual(i int) *fenceplace.Program { return s.src.BuildManual(s.idx[i]) }
func (s *shardSource) origIndex(i int) int                   { return s.idx[i] }
