package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Version is the Report wire-format version. Decode rejects mismatches:
// a report written by an incompatible build must fail loudly, not merge
// silently wrong numbers into a table.
const Version = 1

// Report is the plain-data result of a corpus run: one Row per program,
// sorted by unsharded corpus Index. Everything the paper's tables render
// is in here — counts, timings, cert verdicts — so reports are the unit
// of cross-process sharding: serialize each shard's report, Merge them,
// and the rendered tables equal an unsharded run's byte for byte.
type Report struct {
	Version int    `json:"version"`
	Source  string `json:"source,omitempty"` // provenance: the producing Source's label
	Shard   int    `json:"shard,omitempty"`  // 1-based shard index; 0 = unsharded or merged
	Shards  int    `json:"shards,omitempty"` // shard count the run was partitioned into
	Rows    []Row  `json:"rows"`
}

// Row is the full record for one program.
type Row struct {
	Index    int       `json:"index"` // position in the unsharded source
	Program  string    `json:"program"`
	EscReads int       `json:"escaping_reads"` // Figure 7's denominator
	Variants []Variant `json:"variants"`       // display order: Manual (if built), Pensieve, Address+Control, Control
}

// Variant is one fence placement of a program: the expert Manual build or
// an analyzed strategy.
type Variant struct {
	Name     string `json:"name"`
	Analyzed bool   `json:"analyzed"` // false for Manual (no static analysis behind it)

	Acquires         int            `json:"acquires,omitempty"`
	Generated        int            `json:"orderings_generated,omitempty"`
	Orderings        OrderingCounts `json:"orderings,omitempty"`
	FullFences       int            `json:"full_fences"`
	CompilerBarriers int            `json:"compiler_barriers,omitempty"`

	// Cycles holds the simulated TSO execution time of one run per seed
	// (seed s at index s); empty when the dynamic experiment was skipped.
	Cycles []int64 `json:"cycles,omitempty"`

	Cert *Cert `json:"cert,omitempty"`
}

// OrderingCounts breaks the enforced ordering set down by type.
type OrderingCounts struct {
	RR    int `json:"rr"`
	RW    int `json:"rw"`
	WR    int `json:"wr"`
	WW    int `json:"ww"`
	Total int `json:"total"`
}

// Certification statuses.
const (
	CertCertified = "certified" // SC-equivalent
	CertViolation = "violation" // a TSO-only final state exists
	CertBudget    = "budget"    // state budget exhausted; verdict unknown
	CertError     = "error"     // the exploration failed outright
)

// Cert is the plain-data verdict of one certification.
type Cert struct {
	Status      string `json:"status"`
	SCOutcomes  int    `json:"sc_outcomes,omitempty"`
	TSOOutcomes int    `json:"tso_outcomes,omitempty"`
	VisitedSC   int64  `json:"visited_sc,omitempty"`
	VisitedTSO  int64  `json:"visited_tso,omitempty"`
	Violations  int    `json:"violations,omitempty"`
	// Counterexample is the first reconstructed violation schedule, when
	// one exists.
	Counterexample string `json:"counterexample,omitempty"`
	Err            string `json:"error,omitempty"`
}

// Cell renders the certification as the evaluation table's cell text.
func (c *Cert) Cell() string {
	switch c.Status {
	case CertCertified:
		return fmt.Sprintf("certified (%d states)", c.VisitedTSO)
	case CertViolation:
		return fmt.Sprintf("VIOLATION (%d TSO-only)", c.Violations)
	case CertBudget:
		return "budget exceeded"
	default:
		return fmt.Sprintf("error: %v", c.Err)
	}
}

// variant returns the row's named variant, or nil.
func (r *Row) variant(name string) *Variant {
	for i := range r.Variants {
		if r.Variants[i].Name == name {
			return &r.Variants[i]
		}
	}
	return nil
}

// sortRows orders rows by unsharded corpus index.
func (r *Report) sortRows() {
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].Index < r.Rows[j].Index })
}

// Merge folds another shard's report into r: rows are combined and
// re-sorted by Index, so merging the n shards of one source — in any
// order — reproduces the unsharded report exactly. Merging is refused
// when the reports disagree on version or source, or when an Index
// appears in both (overlapping shards would double-count).
func (r *Report) Merge(o *Report) error {
	if r.Version != o.Version {
		return fmt.Errorf("corpus: merge: version mismatch (%d vs %d)", r.Version, o.Version)
	}
	if r.Source != o.Source {
		return fmt.Errorf("corpus: merge: reports from different sources (%q vs %q)", r.Source, o.Source)
	}
	seen := make(map[int]string, len(r.Rows))
	for _, row := range r.Rows {
		seen[row.Index] = row.Program
	}
	for _, row := range o.Rows {
		if prev, dup := seen[row.Index]; dup {
			return fmt.Errorf("corpus: merge: index %d present in both reports (%s, %s)", row.Index, prev, row.Program)
		}
	}
	r.Rows = append(r.Rows, o.Rows...)
	r.sortRows()
	// The merged report is no single shard; drop the shard provenance.
	r.Shard, r.Shards = 0, 0
	return nil
}

// EncodeJSON writes the report as indented JSON. The encoding is
// deterministic (fixed field order, rows sorted by Index), so identical
// runs produce identical bytes.
func (r *Report) EncodeJSON(w io.Writer) error {
	r.sortRows()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeJSON reads a report and verifies its version.
func DecodeJSON(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("corpus: decode report: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("corpus: report version %d, this build reads %d", r.Version, Version)
	}
	r.sortRows()
	return &r, nil
}
