package corpus

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fenceplace"
	"fenceplace/internal/mc"
	"fenceplace/internal/orders"
	"fenceplace/internal/par"
	"fenceplace/internal/telemetry"
	"fenceplace/internal/tso"
)

// Runner streams a Source through the pipeline: per program one shared
// analyzer session evaluates every strategy, the fence plans are verified,
// and — as configured — the dynamic experiment and certification run on
// each variant. The zero value analyzes the three paper strategies with
// no dynamic runs and no certification.
type Runner struct {
	// Strategies to analyze (default: PensieveOnly, AddressControl,
	// Control — the paper's display order).
	Strategies []fenceplace.Strategy

	// Seeds is the number of simulator seeds the dynamic experiment runs
	// per variant (Figure 10's averaging); 0 skips the dynamic runs.
	Seeds int

	// Certify model-checks every variant (the Manual build included, when
	// the source provides one) against the program's shared SC baseline.
	Certify bool

	// Threads is the certification entry configuration: litmus-style flat
	// thread functions, or nil to explore from main.
	Threads []string

	// Workers bounds the corpus-level fan-out (0 = GOMAXPROCS). Programs
	// are the unit of parallelism; with more than one worker each program's
	// inner analysis session is single-threaded so the pools never
	// oversubscribe the cores.
	Workers int

	// Options configures analysis and certification alike. They are
	// resolved exactly once per Run/Stream — environment-derived defaults
	// (the baseline cache directory) are pinned up front, so one run can
	// never split across two stores.
	Options []fenceplace.Option
}

// Run streams src through the pipeline and collects the rows into a
// Report (sorted by corpus index, stamped with the source's label and
// shard provenance). Cancelling ctx abandons in-flight work — including
// any running exploration — and returns ctx's error.
func (r *Runner) Run(ctx context.Context, src Source) (*Report, error) {
	rep := &Report{Version: Version, Source: src.Label()}
	if sh, ok := src.(*shardSource); ok {
		rep.Shard, rep.Shards = sh.i, sh.n
	}
	var mu sync.Mutex
	err := r.Stream(ctx, src, func(row Row) error {
		mu.Lock()
		rep.Rows = append(rep.Rows, row)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.sortRows()
	return rep, nil
}

// Stream is the streaming form of Run: emit is called once per completed
// program row, serialized, in completion order (not corpus order — rows
// carry their Index). An error from emit stops the run.
func (r *Runner) Stream(ctx context.Context, src Source, emit func(Row) error) error {
	strategies := r.Strategies
	if len(strategies) == 0 {
		strategies = []fenceplace.Strategy{
			fenceplace.PensieveOnly, fenceplace.AddressControl, fenceplace.Control,
		}
	}
	workers := r.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Resolve the options exactly once for the whole run; see Options.
	opts := fenceplace.Resolved(r.Options...)
	innerOpts := opts
	if workers > 1 {
		// Program-level fan-out is the only parallelism competing for
		// cores; inner per-function pools stay single-threaded. (The
		// override applies to the analysis session, not to certification,
		// which runs under the caller's worker setting.)
		innerOpts = append(append([]fenceplace.Option{}, opts...), fenceplace.WithWorkers(1))
	}

	var (
		emitMu   sync.Mutex
		failMu   sync.Mutex
		firstErr error
		stopped  atomic.Bool
		done     atomic.Int64
	)
	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		failMu.Unlock()
		stopped.Store(true)
	}
	// Row-completion progress: when the run's options carry a WithProgress
	// sink, every finished row reports its corpus position. Delivery shares
	// emit's mutex, so sink calls are serialized like emit calls.
	sink := fenceplace.ProgressSink(opts...)
	total := src.Len()
	runStart := time.Now()

	par.ForEach(src.Len(), workers, func(i int) {
		if stopped.Load() || ctx.Err() != nil {
			return
		}
		row, err := r.runOne(ctx, src, i, strategies, opts, innerOpts)
		if err != nil {
			fail(err)
			return
		}
		emitMu.Lock()
		err = emit(*row)
		if sink != nil {
			sink(fenceplace.ProgressEvent{
				Kind:      fenceplace.ProgressRow,
				Program:   row.Program,
				Elapsed:   time.Since(runStart),
				Index:     row.Index,
				RowsDone:  int(done.Add(1)),
				RowsTotal: total,
			})
		}
		emitMu.Unlock()
		if err != nil {
			fail(err)
		}
	})

	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// runOne drives one program through analysis, verification, the dynamic
// experiment and certification, producing its plain-data row.
func (r *Runner) runOne(ctx context.Context, src Source, i int, strategies []fenceplace.Strategy, opts, innerOpts []fenceplace.Option) (row *Row, err error) {
	name := src.Name(i)
	// One program's panic costs one row, not the sweep: the recovered
	// panic becomes this row's error (a structured InternalError), and
	// sibling rows — including in-flight ones on other pool goroutines —
	// run to completion.
	defer func() {
		if rec := recover(); rec != nil {
			row, err = nil, fmt.Errorf("%s: %w", name, mc.AsInternalError("corpus: row "+name, rec))
		}
	}()
	index := i
	if ix, ok := src.(indexed); ok {
		index = ix.origIndex(i)
	}
	if telemetry.TraceEnabled() {
		start := time.Now()
		defer func() {
			telemetry.Emit(telemetry.Span{
				Name:  "row " + name,
				Cat:   "corpus",
				Track: telemetry.NextTrack(),
				Start: start,
				Dur:   time.Since(start),
				Args:  []telemetry.Arg{{Key: "index", Val: int64(index)}},
			})
		}()
	}
	prog := src.Build(i)
	az := fenceplace.NewAnalyzer(prog, innerOpts...)
	results, err := az.AnalyzeAllCtx(ctx, strategies...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	row = &Row{Index: index, Program: name, EscReads: results[0].EscapingReads}

	if manual := src.BuildManual(i); manual != nil {
		full, _ := manual.CountFences(false)
		v := Variant{Name: "Manual", FullFences: full}
		if err := r.finishVariant(ctx, az, &v, manual, opts); err != nil {
			return nil, fmt.Errorf("%s/Manual: %w", name, err)
		}
		row.Variants = append(row.Variants, v)
	}

	for _, res := range results {
		if err := res.Verify(); err != nil {
			return nil, fmt.Errorf("%s/%s: fence plan verification failed: %w", name, res.Strategy, err)
		}
		v := VariantFromResult(res)
		if err := r.finishVariant(ctx, az, &v, res.Instrumented, opts); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, res.Strategy, err)
		}
		row.Variants = append(row.Variants, v)
	}
	return row, nil
}

// VariantFromResult renders an analyzed fence-placement result as a
// report variant: the static counts only — dynamic cycles and the
// certification verdict are the driving harness's to add. It is the one
// mapping from live results to report rows; every driver (this runner,
// the experiment harness) goes through it so their tables cannot drift.
func VariantFromResult(res *fenceplace.Result) Variant {
	kept := res.Kept()
	return Variant{
		Name:      res.Strategy.String(),
		Analyzed:  true,
		Acquires:  len(res.Acquires),
		Generated: res.OrderingsGenerated,
		Orderings: OrderingCounts{
			RR:    kept.Count(orders.RR),
			RW:    kept.Count(orders.RW),
			WR:    kept.Count(orders.WR),
			WW:    kept.Count(orders.WW),
			Total: kept.Total(),
		},
		FullFences:       res.FullFences,
		CompilerBarriers: res.CompilerBarriers,
	}
}

// finishVariant runs the per-variant dynamic experiment and certification
// on an instrumented build.
func (r *Runner) finishVariant(ctx context.Context, az *fenceplace.Analyzer, v *Variant, inst *fenceplace.Program, opts []fenceplace.Option) error {
	for seed := 0; seed < r.Seeds; seed++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		out := tso.Run(inst, tso.Config{
			Mode:   tso.TSO,
			Sched:  tso.MinTime,
			Policy: tso.DrainRandom,
			Seed:   int64(seed),
		})
		if out.Failed() {
			return fmt.Errorf("failed under TSO: failures=%v err=%v deadlock=%v",
				out.Failures, out.Err, out.Deadlock)
		}
		v.Cycles = append(v.Cycles, out.MaxCycles)
	}
	if !r.Certify {
		return nil
	}
	rep, err := az.CertifyProgramCtx(ctx, inst, r.Threads, opts...)
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Cancellation aborts the run; it is not a verdict on the variant.
		return err
	case errors.Is(err, fenceplace.ErrTruncated):
		v.Cert = &Cert{Status: CertBudget, Err: err.Error()}
	case err != nil:
		v.Cert = &Cert{Status: CertError, Err: err.Error()}
	case rep.Equivalent:
		v.Cert = &Cert{
			Status:     CertCertified,
			SCOutcomes: rep.SCOutcomes, TSOOutcomes: rep.TSOOutcomes,
			VisitedSC: rep.VisitedSC, VisitedTSO: rep.VisitedTSO,
		}
	default:
		v.Cert = &Cert{
			Status:     CertViolation,
			SCOutcomes: rep.SCOutcomes, TSOOutcomes: rep.TSOOutcomes,
			VisitedSC: rep.VisitedSC, VisitedTSO: rep.VisitedTSO,
			Violations:     len(rep.Violations),
			Counterexample: rep.Counterexample(),
		}
	}
	return nil
}
