package corpus

import (
	"fmt"

	"fenceplace/internal/stats"
)

// The table renderers below are pure views over Report data: they read
// only row fields, so rendering a merged report is byte-identical to
// rendering the unsharded run's. Variant lookups are by display name;
// rows missing a variant render zeros for it.

// analyzed variant display names.
const (
	manualName  = "Manual"
	pensName    = "Pensieve"
	acName      = "Address+Control"
	controlName = "Control"
)

func (r *Row) acquires(name string) int {
	if v := r.variant(name); v != nil {
		return v.Acquires
	}
	return 0
}

func (r *Row) fences(name string) int {
	if v := r.variant(name); v != nil {
		return v.FullFences
	}
	return 0
}

func (r *Row) orderings(name string) OrderingCounts {
	if v := r.variant(name); v != nil {
		return v.Orderings
	}
	return OrderingCounts{}
}

// Fig7 renders Figure 7: the percentage of potentially-escaping reads each
// detector marks as an acquire.
func Fig7(rep *Report) string {
	t := stats.NewTable("program", "escaping reads", "Control", "Address+Control")
	var ctl, ac []float64
	for i := range rep.Rows {
		r := &rep.Rows[i]
		rc := stats.Ratio(r.acquires(controlName), r.EscReads)
		ra := stats.Ratio(r.acquires(acName), r.EscReads)
		ctl = append(ctl, rc)
		ac = append(ac, ra)
		t.Add(r.Program, fmt.Sprint(r.EscReads), stats.Pct(rc), stats.Pct(ra))
	}
	t.AddSep()
	t.Add("geomean", "", stats.Pct(stats.Geomean(ctl)), stats.Pct(stats.Geomean(ac)))
	return "Figure 7: percentage of escaping reads marked as acquires\n" +
		"(paper: Control ≈ 18% geomean, best 7%, worst 33%; A+C ≈ 60%, best 39%)\n" + t.String()
}

// Fig8 renders Figure 8: orderings by type for Pensieve and both pruned
// variants, as a percentage of Pensieve's total.
func Fig8(rep *Report) string {
	t := stats.NewTable("program", "variant", "r->r", "r->w", "w->r", "w->w", "total", "% of Pensieve")
	var acPct, ctlPct []float64
	for i := range rep.Rows {
		r := &rep.Rows[i]
		base := r.orderings(pensName).Total
		for _, name := range []string{pensName, acName, controlName} {
			o := r.orderings(name)
			ratio := stats.Ratio(o.Total, base)
			switch name {
			case acName:
				acPct = append(acPct, ratio)
			case controlName:
				ctlPct = append(ctlPct, ratio)
			}
			t.Add(r.Program, name,
				fmt.Sprint(o.RR), fmt.Sprint(o.RW),
				fmt.Sprint(o.WR), fmt.Sprint(o.WW),
				fmt.Sprint(o.Total), stats.Pct(ratio))
		}
		t.AddSep()
	}
	t.Add("geomean", "Address+Control", "", "", "", "", "", stats.Pct(stats.Geomean(acPct)))
	t.Add("geomean", "Control", "", "", "", "", "", stats.Pct(stats.Geomean(ctlPct)))
	return "Figure 8: orderings by type, as generated (Pensieve) and after pruning\n" +
		"(paper: ≈ 34% of orderings survive under Control, ≈ 68% under A+C; r->r dominates)\n" + t.String()
}

// Fig9 renders Figure 9: full fences remaining on x86-TSO relative to
// Pensieve's placement.
func Fig9(rep *Report) string {
	t := stats.NewTable("program", "Pensieve", "Address+Control", "Control", "A+C %", "Control %", "Manual")
	var acPct, ctlPct []float64
	for i := range rep.Rows {
		r := &rep.Rows[i]
		base := r.fences(pensName)
		ra := stats.Ratio(r.fences(acName), base)
		rc := stats.Ratio(r.fences(controlName), base)
		acPct = append(acPct, ra)
		ctlPct = append(ctlPct, rc)
		t.Add(r.Program, fmt.Sprint(base), fmt.Sprint(r.fences(acName)),
			fmt.Sprint(r.fences(controlName)), stats.Pct(ra), stats.Pct(rc),
			fmt.Sprint(r.fences(manualName)))
	}
	t.AddSep()
	t.Add("geomean", "", "", "", stats.Pct(stats.Geomean(acPct)), stats.Pct(stats.Geomean(ctlPct)), "")
	return "Figure 9: static full fences on x86-TSO (percentages relative to Pensieve)\n" +
		"(paper: ≈ 38% of Pensieve's fences remain under Control — 62% fewer; ≈ 73% under A+C)\n" + t.String()
}

// Fig10 renders Figure 10: simulated execution time normalized to the
// manual placement, averaged over however many simulator seeds the run
// recorded. It errors when a row lacks the dynamic data (a run with
// Seeds = 0, or a missing Manual build).
func Fig10(rep *Report) (string, error) {
	names := []string{manualName, pensName, acName, controlName}
	t := stats.NewTable("program", "Manual", "Pensieve", "Address+Control", "Control")
	norm := map[string][]float64{}
	for i := range rep.Rows {
		r := &rep.Rows[i]
		cycles := map[string]float64{}
		for _, name := range names {
			v := r.variant(name)
			if v == nil || len(v.Cycles) == 0 {
				return "", fmt.Errorf("corpus: %s/%s: no dynamic runs recorded", r.Program, name)
			}
			var sum float64
			for _, c := range v.Cycles {
				sum += float64(c)
			}
			cycles[name] = sum / float64(len(v.Cycles))
		}
		base := cycles[manualName]
		row := []string{r.Program}
		for _, name := range names {
			n := cycles[name] / base
			if name != manualName {
				norm[name] = append(norm[name], n)
			}
			row = append(row, fmt.Sprintf("%.2fx", n))
		}
		t.Add(row...)
	}
	t.AddSep()
	t.Add("geomean", "1.00x",
		fmt.Sprintf("%.2fx", stats.Geomean(norm[pensName])),
		fmt.Sprintf("%.2fx", stats.Geomean(norm[acName])),
		fmt.Sprintf("%.2fx", stats.Geomean(norm[controlName])))
	head := "Figure 10: simulated execution time on TSO, normalized to manual fences\n" +
		"(paper: Pensieve ≈ 1.94x, A+C ≈ 1.69x, Control ≈ 1.44x; Control ≈ 30% faster than Pensieve)\n"
	return head + t.String(), nil
}

// ManualTable renders the expert fence counts per program alongside the
// paper's §5.3 numbers.
func ManualTable(rep *Report) string {
	paper := map[string]string{
		"canneal": "10", "fmm": "6", "volrend": "2", "matrix": "6", "spanningtree": "5",
	}
	t := stats.NewTable("program", "manual full fences (ours)", "paper §5.3")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		pp, ok := paper[r.Program]
		if !ok {
			pp = "-"
		}
		t.Add(r.Program, fmt.Sprint(r.fences(manualName)), pp)
	}
	return "Manual (expert) fence placement\n" +
		"(differences are expected: our corpus synchronizes through locked RMWs\n" +
		"wherever the original used library atomics — see EXPERIMENTS.md)\n" + t.String()
}

// CertTable renders the certification column of the evaluation: for each
// program and variant, whether the placed fences provably restore SC.
// Uncertified variants render "-". Run-environment footers (SC
// explorations performed, store deltas) are the driver's to append — they
// describe a run, not the report.
func CertTable(rep *Report) string {
	names := []string{manualName, pensName, acName, controlName}
	t := stats.NewTable("program", "Manual", "Pensieve", "Address+Control", "Control")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		cells := []string{r.Program}
		for _, name := range names {
			v := r.variant(name)
			if v == nil || v.Cert == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, v.Cert.Cell())
		}
		t.Add(cells...)
	}
	return "Certification: exhaustive SC-equivalence of the placed fences\n" +
		"(model checker: TSO final states of the instrumented build vs SC final states\n" +
		"of the legacy build; a VIOLATION on a pruned variant means the program is\n" +
		"not DRF or the fences are insufficient)\n" + t.String()
}
