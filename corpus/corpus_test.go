package corpus_test

// Tests of the public corpus API, exercised exactly as an external caller
// would use it: shard the source, run the shards, round-trip the reports
// through JSON, merge, and demand tables byte-identical to the unsharded
// run.

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"

	"fenceplace"
	"fenceplace/corpus"

	"fenceplace/internal/progs"
)

// TestShardPartition pins the partition law: the n shards of a source are
// disjoint, cover it, and keep the members' names.
func TestShardPartition(t *testing.T) {
	src := corpus.EvalSource()
	for _, n := range []int{1, 2, 3, src.Len(), src.Len() + 3} {
		var names []string
		total := 0
		for i := 1; i <= n; i++ {
			sh, err := corpus.Shard(src, i, n)
			if err != nil {
				t.Fatalf("Shard(%d, %d): %v", i, n, err)
			}
			total += sh.Len()
			for j := 0; j < sh.Len(); j++ {
				names = append(names, sh.Name(j))
			}
		}
		if total != src.Len() {
			t.Fatalf("n=%d: shards cover %d members, want %d", n, total, src.Len())
		}
		var want []string
		for j := 0; j < src.Len(); j++ {
			want = append(want, src.Name(j))
		}
		sort.Strings(names)
		sort.Strings(want)
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("n=%d: shard union mismatch at %d: %s vs %s", n, i, names[i], want[i])
			}
		}
	}
	for _, bad := range [][2]int{{0, 2}, {3, 2}, {1, 0}, {-1, 4}} {
		if _, err := corpus.Shard(src, bad[0], bad[1]); err == nil {
			t.Errorf("Shard(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

// TestShardMergeIdenticalTables is the acceptance check for cross-process
// sharding: two complementary shard reports, round-tripped through the
// versioned JSON codec and merged, must render tables byte-identical to an
// unsharded run — and encode to byte-identical JSON.
func TestShardMergeIdenticalTables(t *testing.T) {
	runner := corpus.Runner{Seeds: 1}
	ctx := context.Background()

	full, err := runner.Run(ctx, corpus.EvalSource())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != corpus.EvalSource().Len() {
		t.Fatalf("unsharded run produced %d rows, want %d", len(full.Rows), corpus.EvalSource().Len())
	}

	var merged *corpus.Report
	for i := 1; i <= 2; i++ {
		sh, err := corpus.Shard(corpus.EvalSource(), i, 2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := runner.Run(ctx, sh)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Shard != i || rep.Shards != 2 {
			t.Errorf("shard %d report stamped %d/%d", i, rep.Shard, rep.Shards)
		}
		// Round-trip through the wire format: what merges is what ships.
		var buf bytes.Buffer
		if err := rep.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		dec, err := corpus.DecodeJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = dec
		} else if err := merged.Merge(dec); err != nil {
			t.Fatal(err)
		}
	}

	type render struct {
		name string
		fn   func(*corpus.Report) string
	}
	renders := []render{
		{"Fig7", corpus.Fig7},
		{"Fig8", corpus.Fig8},
		{"Fig9", corpus.Fig9},
		{"ManualTable", corpus.ManualTable},
	}
	for _, r := range renders {
		if got, want := r.fn(merged), r.fn(full); got != want {
			t.Errorf("%s from merged shards differs from unsharded run:\n--- merged ---\n%s\n--- full ---\n%s", r.name, got, want)
		}
	}
	g10, err := corpus.Fig10(merged)
	if err != nil {
		t.Fatal(err)
	}
	w10, err := corpus.Fig10(full)
	if err != nil {
		t.Fatal(err)
	}
	if g10 != w10 {
		t.Errorf("Fig10 from merged shards differs from unsharded run")
	}

	var mj, fj bytes.Buffer
	if err := merged.EncodeJSON(&mj); err != nil {
		t.Fatal(err)
	}
	if err := full.EncodeJSON(&fj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj.Bytes(), fj.Bytes()) {
		t.Error("merged report JSON differs from the unsharded report's")
	}
}

// TestMergeRejections pins the merge guards: version skew, source skew and
// overlapping indices must all refuse.
func TestMergeRejections(t *testing.T) {
	mk := func(source string, idx ...int) *corpus.Report {
		r := &corpus.Report{Version: corpus.Version, Source: source}
		for _, i := range idx {
			r.Rows = append(r.Rows, corpus.Row{Index: i, Program: "p"})
		}
		return r
	}
	a := mk("eval", 0, 2)
	if err := a.Merge(mk("eval", 1, 3)); err != nil {
		t.Fatalf("disjoint merge refused: %v", err)
	}
	for i, r := range a.Rows {
		if r.Index != i {
			t.Fatalf("merged rows not sorted by index: %v at %d", r.Index, i)
		}
	}
	if err := a.Merge(mk("eval", 2)); err == nil {
		t.Error("overlapping index merged")
	}
	if err := a.Merge(mk("cert", 9)); err == nil {
		t.Error("cross-source merge accepted")
	}
	bad := mk("eval", 9)
	bad.Version = corpus.Version + 1
	if err := a.Merge(bad); err == nil {
		t.Error("version-skewed merge accepted")
	}

	var buf bytes.Buffer
	if err := bad.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := corpus.DecodeJSON(&buf); err == nil {
		t.Error("decoder accepted a future version")
	}
}

// TestRunnerCertifies runs the full pipeline — analysis, verification,
// certification against the shared SC baseline — over a single-program
// source and checks the resulting row's plain data.
func TestRunnerCertifies(t *testing.T) {
	t.Setenv("FENCEPLACE_CACHE_DIR", "")
	m := progs.ByName("dekker")
	pp := m.Defaults
	pp.Threads = 2
	pp.Size = 1
	pm := pp
	pm.Manual = true

	runner := corpus.Runner{
		Certify: true,
		Workers: 1,
		Options: []fenceplace.Option{fenceplace.WithMaxStates(1 << 20)},
	}
	rep, err := runner.Run(context.Background(), corpus.SingleSource("dekker", m.Build(pp), m.Build(pm)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rep.Rows))
	}
	row := rep.Rows[0]
	if len(row.Variants) != 4 {
		t.Fatalf("got %d variants, want 4 (Manual + 3 strategies)", len(row.Variants))
	}
	for _, v := range row.Variants {
		if v.Cert == nil {
			t.Fatalf("%s: no certification", v.Name)
		}
		if v.Cert.Status != corpus.CertCertified {
			t.Errorf("%s: %s (%s)", v.Name, v.Cert.Status, v.Cert.Err)
		}
		if (v.Name == "Manual") == v.Analyzed {
			t.Errorf("%s: analyzed flag %v", v.Name, v.Analyzed)
		}
	}
	if s := corpus.CertTable(rep); !bytes.Contains([]byte(s), []byte("certified")) {
		t.Errorf("cert table missing verdicts:\n%s", s)
	}
}

// TestRunnerCancelled pins the driver's context behavior.
func TestRunnerCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runner := corpus.Runner{}
	if _, err := runner.Run(ctx, corpus.EvalSource()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
}
