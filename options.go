package fenceplace

import (
	"os"
	"time"

	"fenceplace/internal/fsx"
	"fenceplace/internal/mc"
)

// Option is the one configuration vocabulary of the public API: the same
// option set parameterizes analyzer construction (NewAnalyzer) and
// certification (CertifyCtx, BaselineCtx). Options irrelevant to a call
// are simply ignored by it — WithTiming has no effect on a certification,
// WithMaxStates none on static analysis — so one resolved option list can
// drive a whole pipeline.
//
// Every knob the deprecated CertOptions struct exposed has an Option
// counterpart; CertOptions.Options converts.
type Option func(*config)

// config is the resolved form of an option list. The zero value selects
// every default; resolve applies the options and pins environment-derived
// defaults (the cache directory) once, so a configuration cannot drift
// mid-run when the environment changes.
type config struct {
	workers int  // bounded fan-out: per-function passes and exploration workers
	timing  bool // Results carry per-pass wall times

	maxStates int64 // model-checker state budget per exploration
	bufferCap int   // modeled TSO store-buffer capacity
	memoryCap int   // model-checker arena limit in words
	exactSeen bool  // exact string-keyed seen sets (oracle mode)
	noPOR     bool  // disable partial-order reduction (oracle mode)

	cacheDir    string // persistent baseline store directory ("" = none)
	cacheDirSet bool   // WithCacheDir was given; skip the env default

	spillDir    string // seen-set spill area ("" = keep sealed runs in RAM)
	spillDirSet bool   // WithSpillDir was given; skip the env default

	progress      func(ProgressEvent) // streaming progress sink (nil = none)
	progressEvery time.Duration       // heartbeat interval (0 = default 250ms)

	faultFS   fsx.FS // filesystem override for cache + spill I/O (nil = the OS)
	ioRetries int    // transient-I/O retry bound (0 = default, <0 = none)
}

// resolve folds an option list into a configuration. The baseline-store
// default is resolved here, exactly once per configuration: when no
// WithCacheDir option is present, $FENCEPLACE_CACHE_DIR is read at this
// point and the value is carried in the config from then on. A mid-run
// change to the environment therefore cannot split one run across two
// stores — every consumer of the resolved config sees the same directory.
func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if !c.cacheDirSet {
		// Marking the directory as set makes the resolution sticky: a
		// resolved config re-applied later (Resolved's pinning) keeps this
		// value instead of consulting the environment again.
		c.cacheDir, c.cacheDirSet = os.Getenv("FENCEPLACE_CACHE_DIR"), true
	}
	if !c.spillDirSet {
		c.spillDir, c.spillDirSet = os.Getenv("FENCEPLACE_SPILL_DIR"), true
	}
	return c
}

// mcConfig maps the exploration-shaping knobs onto a model-checker
// configuration (the single source of this mapping; CertOptions.MCConfig
// remains as the deprecated adapter's view of it).
func (c config) mcConfig() mc.Config {
	return mc.Config{
		MaxStates: c.maxStates,
		Workers:   c.workers,
		BufferCap: c.bufferCap,
		MemoryCap: c.memoryCap,
		SpillDir:  c.spillDir,
		ExactSeen: c.exactSeen,
		NoPOR:     c.noPOR,
		FS:        c.faultFS,
		IORetries: c.ioRetries,
	}
}

// WithWorkers bounds the configured parallelism: the analyzer's
// per-function fan-out and the model checker's exploration workers alike.
// n < 1 means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithTiming makes every produced Result carry per-pass wall times, which
// Summary then reports.
func WithTiming() Option {
	return func(c *config) { c.timing = true }
}

// WithCacheDir names the persistent, content-addressed baseline store
// (internal/store) certifications consult before exploring and write back
// after. The empty string disables persistence explicitly — unlike
// omitting the option, which falls back to $FENCEPLACE_CACHE_DIR (read
// once, when the option list is resolved).
func WithCacheDir(dir string) Option {
	return func(c *config) { c.cacheDir, c.cacheDirSet = dir, true }
}

// WithMaxStates bounds each model-checker exploration to n states; an
// exceeded budget surfaces as an error wrapping ErrTruncated, never as a
// verdict. n <= 0 means the checker's default (2M states).
func WithMaxStates(n int64) Option {
	return func(c *config) { c.maxStates = n }
}

// WithExactSeen switches the model checker to exact string-keyed seen
// sets — the slow cross-checking oracle for the fingerprint tables.
func WithExactSeen() Option {
	return func(c *config) { c.exactSeen = true }
}

// WithNoPOR disables partial-order reduction — the cross-checking oracle
// for the reduced exploration.
func WithNoPOR() Option {
	return func(c *config) { c.noPOR = true }
}

// WithBufferCap sets the modeled TSO store-buffer capacity (default 4).
func WithBufferCap(n int) Option {
	return func(c *config) { c.bufferCap = n }
}

// WithMemoryCap sets the model checker's memory budget: the per-state
// arena limit in words (default 1<<22) and, through it, the RAM allowance
// of the seen set (8 bytes per word) — once the seen set crosses that
// allowance, cold fingerprints are sealed and spilled to the WithSpillDir
// area instead of truncating the exploration. n < 0 removes the cap.
func WithMemoryCap(n int) Option {
	return func(c *config) { c.memoryCap = n }
}

// WithSpillDir names the scratch area where the model checker's sealed
// seen-set runs are written when an exploration outgrows its memory
// budget (see WithMemoryCap). The empty string disables spilling
// explicitly — unlike omitting the option, which falls back to
// $FENCEPLACE_SPILL_DIR (read once, when the option list is resolved).
// Without a spill directory, sealed runs stay in RAM: results are
// identical, only the budget is no longer honored. The area is distinct
// from the WithCacheDir baseline store; `fencecache gc -spill DIR`
// reclaims sessions orphaned by crashes.
func WithSpillDir(dir string) Option {
	return func(c *config) { c.spillDir, c.spillDirSet = dir, true }
}

// WithFaultFS routes every disk operation of the certification pipeline —
// the baseline cache and the seen-set spill area — through fs instead of
// the real filesystem. It is the fault-injection seam of the chaos test
// suite (see internal/fsx.NewFaultFS); nil restores the OS. The
// filesystem cannot affect certification verdicts, only whether the
// pipeline runs cached, spilled, or degraded; fs must have a comparable
// dynamic type (the pass session keys baselines by configuration).
func WithFaultFS(fs fsx.FS) Option {
	return func(c *config) { c.faultFS = fs }
}

// WithIORetries bounds how many times a transiently failing disk
// operation (EIO, interrupted syscall, short write) is re-attempted with
// exponential backoff before the pipeline degrades: 0 keeps the default
// (2 retries), negative disables retrying. Permanent failures — missing
// files, permission errors, no space — are never retried.
func WithIORetries(n int) Option {
	return func(c *config) { c.ioRetries = n }
}

// Resolved returns an option list equivalent to opts with every
// environment-derived default pinned: applying the result any number of
// times, at any later point, yields exactly the configuration opts
// resolves to now. Multi-program drivers (the corpus runner, the
// experiment harness) resolve once up front so a mid-run environment
// change cannot split one run across two baseline stores.
func Resolved(opts ...Option) []Option {
	c := resolve(opts)
	return []Option{func(o *config) { *o = c }}
}

// AnalyzerOption is the historical name of Option from when analyzer
// construction had its own option type.
//
// Deprecated: use Option.
type AnalyzerOption = Option
